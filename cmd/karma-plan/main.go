// Command karma-plan runs KARMA's two-tier optimizer on a model and
// prints the resulting blocking, policies, and execution plan (the
// textual form of paper Fig. 7 plus the §III-F3 plan notation), together
// with the simulated iteration report.
//
// Usage:
//
//	karma-plan -model resnet50 -batch 512
//	karma-plan -model unet -batch 24 -maxopen 5
//	karma-plan -list
//
// With -gpus the model is instead evaluated as one distributed KARMA-DP
// configuration on the ABCI cluster (per-replica batch -batch), using the
// analytic or planner-backed cluster backend:
//
//	karma-plan -model turing-nlg-17B -batch 2 -gpus 512 -backend planned -zero
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"karma/internal/dist"
	"karma/internal/hw"
	"karma/internal/karma"
	"karma/internal/model"
	"karma/internal/profiler"
	"karma/internal/sim"
	"karma/internal/trace"
)

func main() {
	modelName := flag.String("model", "resnet50", "model name")
	batch := flag.Int("batch", 512, "mini-batch size")
	maxOpen := flag.Int("maxopen", 1, "segmentation bound (use >1 for U-Net)")
	overhead := flag.Float64("overhead", 1.0, "activation overhead factor (framework slack)")
	noRecompute := flag.Bool("no-recompute", false, "disable the Opt-2 recompute interleave")
	useACO := flag.Bool("aco", false, "use the ant-colony Opt-1 backend (MIDACO stand-in)")
	gantt := flag.Bool("gantt", false, "render an ASCII Gantt chart of the simulated pipeline")
	chrome := flag.String("chrome", "", "write a Chrome trace-event JSON file of the timeline")
	planOut := flag.String("plan-json", "", "write the execution plan as JSON")
	dotOut := flag.String("dot", "", "write the model dependency graph in Graphviz dot format")
	list := flag.Bool("list", false, "list available models")
	gpus := flag.Int("gpus", 0, "evaluate a distributed KARMA-DP configuration on this many GPUs instead of planning one device")
	backend := flag.String("backend", "analytic",
		"cluster-model backend with -gpus: "+strings.Join(dist.BackendNames(), "|"))
	zero := flag.Bool("zero", false, "with -gpus: compose KARMA with ZeRO-style gradient/optimizer sharding")
	updDev := flag.Bool("update-on-device", false, "with -gpus: force streamed blocks to update on the GPU (ablation A4)")
	samples := flag.Int("samples", 1_281_167, "with -gpus: epoch sample count (default ImageNet)")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(model.Names(), "\n"))
		return
	}
	if *gpus > 0 {
		// The single-device planning flags have no meaning for the
		// distributed evaluation; reject them rather than silently
		// dropping a requested artifact.
		for name, set := range map[string]bool{
			"-maxopen":      *maxOpen != 1,
			"-overhead":     *overhead != 1.0,
			"-no-recompute": *noRecompute,
			"-aco":          *useACO,
			"-gantt":        *gantt,
			"-chrome":       *chrome != "",
			"-plan-json":    *planOut != "",
			"-dot":          *dotOut != "",
		} {
			if set {
				fmt.Fprintf(os.Stderr, "karma-plan: %s only applies to single-device planning (drop -gpus)\n", name)
				os.Exit(1)
			}
		}
		if err := runDist(*modelName, *batch, *gpus, *backend, *zero, *updDev, *samples); err != nil {
			fmt.Fprintf(os.Stderr, "karma-plan: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*modelName, *batch, *maxOpen, *overhead, *noRecompute, *useACO, *gantt, *chrome, *planOut, *dotOut); err != nil {
		fmt.Fprintf(os.Stderr, "karma-plan: %v\n", err)
		os.Exit(1)
	}
}

// runDist evaluates one distributed configuration with the chosen
// cluster-model backend and prints the outcome.
func runDist(modelName string, batch, gpus int, backend string, zero, updDev bool, samples int) error {
	g, err := model.Build(modelName)
	if err != nil {
		return err
	}
	ev, err := dist.ByName(backend)
	if err != nil {
		return err
	}
	cl := hw.ABCI()
	r, err := ev.KARMADataParallel(g, cl, gpus, batch, samples, dist.KARMAOptions{
		ZeROShard: zero, UpdateOnDevice: updDev,
	})
	if err != nil {
		return err
	}
	fmt.Printf("model %s on %s: %d GPUs x batch %d (global %d), backend %s\n",
		g.Name(), cl.Name, gpus, batch, r.GlobalBatch, r.Backend)
	if !r.Feasible {
		fmt.Printf("infeasible: %s\n", r.Reason)
		return nil
	}
	fmt.Printf("iteration: %v (%.3f iter/s); epoch of %d samples: %.2f h; cost/perf %.3g GPU-s/sample\n",
		r.IterTime, r.IterPerSec, samples, float64(r.EpochTime)/3600, r.CostPerf)
	return nil
}

func run(modelName string, batch, maxOpen int, overhead float64, noRecompute, useACO, gantt bool, chromePath, planPath, dotPath string) error {
	g, err := model.Build(modelName)
	if err != nil {
		return err
	}
	node := hw.ABCINode()
	p, err := profiler.New(g, node, profiler.Options{
		Batch: batch, MaxOpen: maxOpen, ActOverhead: overhead,
	})
	if err != nil {
		return err
	}
	fmt.Printf("model %s: %d nodes, %d segments, %d params, %v activations at batch %d\n",
		g.Name(), g.Len(), len(p.Blocks), g.ParamCount(), p.TotalActBytes, batch)
	fmt.Printf("device %s: %v usable; in-core footprint %v (fits: %v)\n",
		node.Device.Name, node.Device.UsableMem(), p.InCoreBytes(), p.FitsInCore())

	opts := karma.Options{DisableRecompute: noRecompute}
	if useACO {
		opts.Solver = karma.SolverACO
	}
	s, err := karma.Plan(p, opts)
	if err != nil {
		return err
	}
	fmt.Printf("\nblocking: %d blocks, resident tail from block %d, budget %v\n",
		s.NumBlocks(), s.Resident, s.Budget)
	fmt.Printf("%-5s %-11s %-6s %-12s %-12s %-12s %-10s\n",
		"block", "segments", "policy", "activations", "heavy", "fwd", "swap")
	for i, b := range s.Blocks {
		pol := b.Policy.String()
		if b.Ckpt {
			pol += "+ckpt"
		}
		fmt.Printf("%-5d %4d-%-6d %-6s %-12v %-12v %-12v %-10v\n",
			i, b.Range[0], b.Range[1], pol,
			b.Cost.ActBytes, b.Cost.HeavyActBytes, b.Cost.FwdTime, b.Cost.SwapTime)
	}

	rep, err := karma.Simulate(s)
	if err != nil {
		return err
	}
	fmt.Printf("\niteration: %v (%.1f samples/s), occupancy %.3f, stall %v, peak activations %v\n",
		rep.IterTime, rep.Throughput, rep.Occupancy, rep.ComputeStall, rep.PeakMem)
	fmt.Printf("swapped per direction: %v; redundant recompute: %v\n",
		s.SwappedBytes(), s.RecomputedTime())
	fmt.Printf("\nplan: %s\n", rep.Plan)

	if gantt || chromePath != "" {
		compiled, tl, err := rep.Plan.Simulate(s.Budget)
		if err != nil {
			return err
		}
		events := trace.Collect(compiled.Ops, tl)
		if gantt {
			fmt.Println()
			if err := trace.Gantt(os.Stdout, events, tl.Makespan, 100); err != nil {
				return err
			}
			util := trace.Utilization(events, tl.Makespan)
			fmt.Printf("utilization: compute %.2f, h2d %.2f, d2h %.2f\n",
				util[sim.Compute], util[sim.H2D], util[sim.D2H])
		}
		if chromePath != "" {
			f, err := os.Create(chromePath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := trace.WriteChrome(f, events); err != nil {
				return err
			}
			fmt.Printf("wrote Chrome trace to %s\n", chromePath)
		}
	}
	if dotPath != "" {
		if err := os.WriteFile(dotPath, []byte(g.DOT()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote dependency graph to %s\n", dotPath)
	}
	if planPath != "" {
		f, err := os.Create(planPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.Plan.Encode(f); err != nil {
			return err
		}
		fmt.Printf("wrote plan JSON to %s\n", planPath)
	}
	return nil
}
