package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"karma/internal/dist"
	"karma/internal/experiments"
	"karma/internal/hw"
	"karma/internal/model"
	"karma/internal/trace"
)

// openWTSamples mirrors the experiment panels' epoch sample count.
const openWTSamples = 7_200_000

// turingPanel marks Figure8Turing rows for exportWinner (the Megatron
// panels pass their Table IV config index instead).
const turingPanel = -1

// writePanelTraces exports the fastest feasible method of every panel
// row as a Chrome trace under dir (karma-bench -trace-out). The winner's
// configuration is re-derived from the panel's construction rules, and
// the schedule always comes from the planned backend — the export is the
// planner's timeline by definition, whichever backend rendered the
// table.
func writePanelTraces(dir string, panel *experiments.Fig8Panel, cfgIdx int, cl hw.Cluster, pe *dist.Planned, fo experiments.FamilyOptions) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, row := range panel.Rows {
		winner := ""
		var best *dist.Result
		for _, m := range panel.Methods {
			r := row.Results[m]
			if r != nil && r.Feasible && (best == nil || r.EpochTime < best.EpochTime) {
				winner, best = m, r
			}
		}
		if winner == "" {
			continue // every method infeasible at this scale
		}
		ex, err := exportWinner(pe, winner, cfgIdx, cl, row.GPUs, fo)
		if err != nil {
			return fmt.Errorf("trace %s@%d: %w", winner, row.GPUs, err)
		}
		var buf bytes.Buffer
		if err := trace.WriteChrome(&buf, trace.Collect(ex.Compiled.Ops, ex.Timeline)); err != nil {
			return err
		}
		name := fmt.Sprintf("fig8-%s-%dgpus-%s.json", panel.Model, row.GPUs, winner)
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// benchMicro mirrors FamilyOptions.micro (unexported): the pipeline
// micro-batch count, default 8, clamped to the per-replica batch.
func benchMicro(fo experiments.FamilyOptions, perReplicaBatch int) int {
	m := fo.PipelineMicro
	if m <= 0 {
		m = 8
	}
	if m > perReplicaBatch {
		m = perReplicaBatch
	}
	return m
}

// exportWinner re-derives one panel cell's configuration (the rules of
// Figure8Megatron / Figure8Turing) and exports its plan and timeline.
func exportWinner(pe *dist.Planned, method string, cfgIdx int, cl hw.Cluster, gpus int, fo experiments.FamilyOptions) (*dist.PlanExport, error) {
	ho := dist.HybridOptions{Checkpoint: fo.Ckpt, Precision: fo.Precision}
	ko := dist.KARMAOptions{Precision: fo.Precision}
	if cfgIdx != turingPanel {
		cfg := model.MegatronConfigs()[cfgIdx]
		mp := 1 << cfgIdx // Table IV: MP = 1,2,4,8,16
		const batch = 4
		switch method {
		case "mp+dp":
			return pe.ExportHybrid(cfg, cl, mp, gpus, batch, openWTSamples, false, ho)
		case "mp+dp-opt":
			ho.Phased = true
			return pe.ExportHybrid(cfg, cl, mp, gpus, batch, openWTSamples, false, ho)
		case "karma-dp":
			return pe.ExportKARMA(model.Transformer(cfg), cl, gpus, batch, openWTSamples, ko)
		case "pipeline":
			ho.Phased = true
			return pe.ExportPipeline(cfg, cl, mp, gpus, batch, benchMicro(fo, batch), openWTSamples, ho)
		}
		return nil, fmt.Errorf("unknown megatron panel method %q", method)
	}
	cfg := model.TuringNLG()
	const batch = 2
	const pipeStages = 16
	switch method {
	case "zero":
		mp, zbatch, _, err := experiments.ZeROBestConfig(cfg, cl, gpus, pe, fo)
		if err != nil {
			return nil, err
		}
		ho.Phased = true
		return pe.ExportHybrid(cfg, cl, mp, gpus, zbatch, openWTSamples, true, ho)
	case "karma-dp":
		return pe.ExportKARMA(model.Transformer(cfg), cl, gpus, batch, openWTSamples, ko)
	case "zero+karma":
		ko.ZeROShard = true
		return pe.ExportKARMA(model.Transformer(cfg), cl, gpus, batch, openWTSamples, ko)
	case "pipeline":
		ho.Phased = true
		micro := benchMicro(fo, batch*pipeStages) // capacity sweep floor
		pbatch, _, err := dist.PipelineCapacityBatch(cfg, cl, pipeStages, gpus, micro, openWTSamples, pe, ho)
		if err != nil {
			return nil, err
		}
		return pe.ExportPipeline(cfg, cl, pipeStages, gpus, pbatch, micro, openWTSamples, ho)
	}
	return nil, fmt.Errorf("unknown turing panel method %q", method)
}
