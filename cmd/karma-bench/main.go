// Command karma-bench regenerates the paper's evaluation tables and
// figures (§IV) on the simulated substrate and prints them as text
// tables. See DESIGN.md for the experiment index and EXPERIMENTS.md for
// recorded paper-vs-measured outcomes.
//
// Usage:
//
//	karma-bench -exp all            # everything (Fig. 5-8, Tables I/IV/V, equivalence)
//	karma-bench -exp fig5           # single-GPU throughput sweeps
//	karma-bench -exp fig5 -model resnet50
//	karma-bench -exp fig8           # multi-node scaling
//	karma-bench -exp fig8 -backend planned   # planner-backed cluster models
//	karma-bench -exp topo -topo abci         # interconnect sensitivity panel
//	karma-bench -exp fig8 -explain           # cost attribution per panel cell
//	karma-bench -exp fig8 -trace-out traces/ # Chrome traces of each row's winner
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"karma/internal/dist"
	"karma/internal/experiments"
	"karma/internal/hw"
	"karma/internal/tensor"
	"karma/internal/topo"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig5|fig6|fig7|fig8|table1|table4|table5|equiv|ablations|topo|all")
	modelName := flag.String("model", "", "restrict fig5 to one model")
	backend := flag.String("backend", "analytic",
		"cluster-model backend for fig8/table4/table5/ablations: "+strings.Join(dist.BackendNames(), "|"))
	ckpt := flag.Bool("ckpt", true,
		"activation checkpointing in the MP+DP/ZeRO/pipeline baselines of fig8/table4 (the regime real deployments train in; off shows the smaller no-recompute capacity)")
	precision := flag.String("precision", "fp32",
		"training regime for fig8/table4: "+strings.Join(tensor.PrecisionNames(), "|")+
			" — fp16 (synonym: mixed) is mixed precision with an fp32 master, halving memory and traffic and calibrating the Fig. 8 right panel toward the paper's ~1.35x")
	pipeline := flag.Bool("pipeline", false,
		"add the GPipe-style pipeline-parallel baseline family to fig8/table4")
	topoFlag := flag.String("topo", "flat",
		"interconnect model collectives route over (internal/topo): flat (the seed's single contended ring), abci (Table II's 2-NIC rail-optimized fat tree), or fattree:<ratio> (leaf uplinks oversubscribed ratio:1)")
	workers := flag.Int("workers", 0,
		"goroutines fanning grid points across each sweep (0 = NumCPU); every worker count renders identical tables")
	explain := flag.Bool("explain", false,
		"print a cost-attribution table (dist.Breakdown: compute/recompute/swap/exchange/collective/bubble/update as % of iteration) after each fig8/table4 panel")
	traceOut := flag.String("trace-out", "",
		"write the fastest feasible method of every fig8 panel row as a Chrome trace (chrome://tracing, Perfetto) into this directory")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write an allocation profile taken after the selected experiments to this file (go tool pprof)")
	flag.Parse()

	var cpuf *os.File
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "karma-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "karma-bench: %v\n", err)
			os.Exit(1)
		}
		cpuf = f
	}

	err := run(*exp, *modelName, *backend, *precision, *topoFlag, *traceOut, *ckpt, *pipeline, *explain, *workers)

	// Flushed before any exit path: os.Exit skips deferred calls. Close
	// reports short writes the profile flush buffered past Stop — the
	// same contract the -memprofile path keeps.
	if cpuf != nil {
		pprof.StopCPUProfile()
		if cerr := cpuf.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "karma-bench: cpuprofile: %v\n", cerr)
			if err == nil {
				os.Exit(1)
			}
		}
	}

	if *memprofile != "" {
		f, merr := os.Create(*memprofile)
		if merr == nil {
			runtime.GC() // settle live objects so alloc_* samples dominate
			merr = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); merr == nil {
				merr = cerr
			}
		}
		if merr != nil {
			fmt.Fprintf(os.Stderr, "karma-bench: memprofile: %v\n", merr)
			if err == nil {
				os.Exit(1)
			}
		}
	}

	if err != nil {
		fmt.Fprintf(os.Stderr, "karma-bench: %v\n", err)
		os.Exit(1)
	}
}

func run(exp, modelName, backend, precision, topoName, traceOut string, ckpt, pipeline, explain bool, workers int) error {
	node := hw.ABCINode()
	cl := hw.ABCI()
	tp, err := topo.Parse(topoName)
	if err != nil {
		return err
	}
	cl = cl.WithTopology(tp)
	ev, err := dist.ByName(backend)
	if err != nil {
		return err
	}
	prec, err := tensor.ParsePrecision(precision)
	if err != nil {
		return err
	}
	fo := experiments.FamilyOptions{Ckpt: ckpt, Precision: prec, Pipeline: pipeline, Workers: workers}
	all := exp == "all"

	if all || exp == "table1" {
		if _, err := experiments.TableI().WriteTo(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	if all || exp == "fig5" {
		for _, w := range experiments.Fig5Workloads() {
			if modelName != "" && w.Model != modelName {
				continue
			}
			panel, err := experiments.Figure5Panel(w, node)
			if err != nil {
				return err
			}
			if _, err := panel.Table().WriteTo(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		if modelName == "" {
			panels, err := experiments.Figure5(node)
			if err != nil {
				return err
			}
			fmt.Printf("average speedup over SOTA out-of-core/recompute methods: %.2fx (paper: 1.52x)\n\n",
				experiments.AverageSpeedup(panels))
		}
	}

	if all || exp == "fig6" {
		series, err := experiments.Figure6(node)
		if err != nil {
			return err
		}
		if _, err := experiments.Fig6Table(series).WriteTo(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	if all || exp == "fig7" {
		r, err := experiments.Figure7(node)
		if err != nil {
			return err
		}
		if _, err := r.Table().WriteTo(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	if all || exp == "fig8" {
		// The trace export always runs the planner (the export is the
		// planner's schedule by definition); reuse ev when it already is
		// the planned backend so its memos carry over.
		var pe *dist.Planned
		if traceOut != "" {
			if p, ok := ev.(*dist.Planned); ok {
				pe = p
			} else {
				pe = dist.NewPlanned()
			}
		}
		for _, cfg := range []struct {
			idx  int
			gpus []int
		}{
			{2, []int{128, 256, 512, 1024, 2048}}, // 2.5B
			{4, []int{512, 1024, 2048}},           // 8.3B
		} {
			panel, err := experiments.Figure8Megatron(cl, cfg.idx, cfg.gpus, ev, fo)
			if err != nil {
				return err
			}
			if _, err := panel.Table().WriteTo(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
			if explain {
				if _, err := panel.ExplainTable().WriteTo(os.Stdout); err != nil {
					return err
				}
				fmt.Println()
			}
			if pe != nil {
				if err := writePanelTraces(traceOut, panel, cfg.idx, cl, pe, fo); err != nil {
					return err
				}
			}
		}
		turing, err := experiments.Figure8Turing(cl, []int{512, 1024, 2048}, ev, fo)
		if err != nil {
			return err
		}
		if _, err := turing.Table().WriteTo(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if explain {
			if _, err := turing.ExplainTable().WriteTo(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		if pe != nil {
			if err := writePanelTraces(traceOut, turing, turingPanel, cl, pe, fo); err != nil {
				return err
			}
		}
	}

	if all || exp == "table4" {
		rows, err := experiments.TableIV(cl, ev, fo)
		if err != nil {
			return err
		}
		if _, err := experiments.TableIVTable(rows).WriteTo(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if explain {
			if _, err := experiments.TableIVExplainTable(rows).WriteTo(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
	}

	if all || exp == "table5" {
		sweeps, err := experiments.TableV(cl, ev, workers)
		if err != nil {
			return err
		}
		for _, name := range []string{"resnet50", "resnet200"} {
			if _, err := experiments.TableVTable(name, sweeps[name]).WriteTo(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
	}

	if all || exp == "equiv" {
		rs, err := experiments.Equivalence()
		if err != nil {
			return err
		}
		if _, err := experiments.EquivalenceTable(rs).WriteTo(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	if all || exp == "ablations" {
		rs, err := experiments.Ablations(node, cl, ev, workers)
		if err != nil {
			return err
		}
		if _, err := experiments.AblationTable(rs).WriteTo(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	if all || exp == "topo" {
		// The sensitivity panel sweeps the preset ladder regardless of
		// -topo (which pins the fabric of the other experiments), so the
		// flat row always anchors against the calibrated Fig. 8 numbers.
		const gpus = 512
		rows, err := experiments.TopologySweep(cl, gpus, experiments.TopoLadder(), ev, fo)
		if err != nil {
			return err
		}
		if _, err := experiments.TopoTable(rows, gpus, ev.Name()).WriteTo(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	switch exp {
	case "all", "fig5", "fig6", "fig7", "fig8", "table1", "table4", "table5", "equiv", "ablations", "topo":
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}
