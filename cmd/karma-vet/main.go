// Command karma-vet is the multichecker for the repository's
// domain-aware analyzers (unitcheck, detcheck, plancheck — see
// internal/analysis). It runs in two modes:
//
// Standalone (the CI gate and the usual local invocation):
//
//	go run ./cmd/karma-vet ./...
//	go run ./cmd/karma-vet -checks unitcheck ./internal/dist/
//
// As a vet tool, speaking the `go vet -vettool` unit-checker protocol
// (the go command invokes the tool once per package with a JSON config
// file, and once with -V=full for cache keying):
//
//	go build -o /tmp/karma-vet ./cmd/karma-vet
//	go vet -vettool=/tmp/karma-vet ./...
//
// Findings print as file:line:col: analyzer: message; the exit status
// is non-zero when any finding is reported. Suppress a genuinely
// intended spot with the analyzer's directive comment
// (//karma:unit-ok, //karma:det-ok, //karma:plan-ok), each of which
// requires a reason.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"karma/internal/analysis"
	"karma/internal/analysis/detcheck"
	"karma/internal/analysis/load"
	"karma/internal/analysis/plancheck"
	"karma/internal/analysis/unitcheck"
)

// analyzers is the suite, in output order.
var analyzers = []*analysis.Analyzer{
	unitcheck.Analyzer,
	detcheck.Analyzer,
	plancheck.Analyzer,
}

func main() {
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		printVersion()
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		// The go command probes the vettool for pass-through flags; the
		// suite exposes none to vet, so report an empty set.
		fmt.Println("[]")
		return
	}
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	tests := flag.Bool("tests", true, "analyze in-package _test.go files for analyzers that want them")
	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	selected, err := selectAnalyzers(*checks)
	if err != nil {
		fatal(err)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		// `go vet -vettool` mode: one package per invocation, described
		// by a JSON config file.
		found, err := runVetTool(args[0], selected)
		if err != nil {
			fatal(err)
		}
		if found {
			os.Exit(2)
		}
		return
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	found, err := runStandalone(args, selected, *tests)
	if err != nil {
		fatal(err)
	}
	if found {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "karma-vet: %v\n", err)
	os.Exit(1)
}

func selectAnalyzers(csv string) ([]*analysis.Analyzer, error) {
	if csv == "" {
		return analyzers, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(csv, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: unitcheck, detcheck, plancheck)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// runStandalone loads the patterns itself and applies the suite.
func runStandalone(patterns []string, selected []*analysis.Analyzer, tests bool) (bool, error) {
	pkgs, err := load.Packages(".", patterns, tests)
	if err != nil {
		return false, err
	}
	found := false
	for _, pkg := range pkgs {
		if strings.HasPrefix(pkg.ImportPath, "karma/internal/analysis") {
			// The analyzers' own fixtures deliberately violate the rules.
			continue
		}
		for _, err := range pkg.TypeErrors {
			return false, fmt.Errorf("%s: type error: %v", pkg.ImportPath, err)
		}
		if f, err := runSuite(pkg, selected); err != nil {
			return false, err
		} else if f {
			found = true
		}
	}
	return found, nil
}

// runSuite applies every applicable analyzer to one loaded package.
func runSuite(pkg *load.Package, selected []*analysis.Analyzer) (bool, error) {
	found := false
	for _, a := range selected {
		if !a.AppliesTo(pkg.ImportPath) {
			continue
		}
		files := pkg.Files
		if !a.IncludeTests {
			files = nil
			for _, f := range pkg.Files {
				if !pkg.IsTestFile[f] {
					files = append(files, f)
				}
			}
		}
		pass := &analysis.Pass{
			Fset:       pkg.Fset,
			Files:      files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			IsTestFile: pkg.IsTestFile,
		}
		diags, err := analysis.RunAnalyzer(a, pass)
		if err != nil {
			return found, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		for _, d := range diags {
			fmt.Printf("%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
			found = true
		}
	}
	return found, nil
}

// vetConfig is the subset of the `go vet -vettool` JSON config the
// tool consumes. The export-data fields (ImportMap, PackageFile) are
// ignored: imports are re-resolved from source, which works offline
// and keeps one loading path for both modes.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetTool handles one unit-checker invocation.
func runVetTool(cfgFile string, selected []*analysis.Analyzer) (bool, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return false, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return false, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}
	// The go command synthesizes test variants as "path [path.test]";
	// match analyzers against the real import path.
	importPath := cfg.ImportPath
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	writeVetx := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		// No cross-package facts; an empty vetx satisfies the protocol.
		return os.WriteFile(cfg.VetxOutput, nil, 0o666)
	}
	if cfg.VetxOnly || strings.HasSuffix(importPath, ".test") {
		return false, writeVetx()
	}

	var applicable []*analysis.Analyzer
	for _, a := range selected {
		if a.AppliesTo(importPath) {
			applicable = append(applicable, a)
		}
	}
	if len(applicable) == 0 {
		return false, writeVetx()
	}

	testSet := map[string]bool{}
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			testSet[f] = true
		}
	}
	fset := token.NewFileSet()
	pkg, err := load.Check(fset, load.NewImporter(fset), importPath, cfg.Dir, cfg.GoFiles, testSet)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return false, writeVetx()
		}
		return false, err
	}
	if len(pkg.TypeErrors) > 0 && cfg.SucceedOnTypecheckFailure {
		return false, writeVetx()
	}

	found := false
	var lines []string
	for _, a := range applicable {
		files := pkg.Files
		if !a.IncludeTests {
			files = nil
			for _, f := range pkg.Files {
				if !pkg.IsTestFile[f] {
					files = append(files, f)
				}
			}
		}
		diags, err := analysis.RunAnalyzer(a, &analysis.Pass{
			Fset:       fset,
			Files:      files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			IsTestFile: pkg.IsTestFile,
		})
		if err != nil {
			return found, err
		}
		for _, d := range diags {
			lines = append(lines, fmt.Sprintf("%s: %s: %s", fset.Position(d.Pos), d.Analyzer, d.Message))
			found = true
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(os.Stderr, l)
	}
	if !found {
		return false, writeVetx()
	}
	return true, nil
}

// printVersion implements -V=full for the go command's tool-ID cache
// key: the output must read "<name> version <id>", and the id must
// change whenever the tool's behavior does — hash the executable.
func printVersion() {
	name := filepath.Base(os.Args[0])
	id := "devel"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			f.Close()
		}
	}
	fmt.Printf("%s version %s\n", name, id)
}
