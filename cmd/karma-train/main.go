// Command karma-train runs the real (numeric) out-of-core training
// substrate: an MLP classifier trained on synthetic data under a
// simulated near-memory capacity, with the chosen per-layer policies, and
// verifies bitwise equivalence against in-core training (paper §IV-D).
//
// Usage:
//
//	karma-train -steps 50 -capacity 4096 -policies swap,swap,swap,swap,keep
//	karma-train -workers 4   # data-parallel pipeline with host-side updates
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"karma/internal/nn"
)

func main() {
	steps := flag.Int("steps", 40, "training steps")
	capacity := flag.Int64("capacity", 1<<20, "near-memory capacity in bytes")
	policyFlag := flag.String("policies", "swap,recompute,swap,recompute,keep",
		"per-layer policies: keep|swap|recompute x5")
	workers := flag.Int("workers", 0, "data-parallel workers (0 = single device)")
	flag.Parse()

	if err := run(*steps, *capacity, *policyFlag, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "karma-train: %v\n", err)
		os.Exit(1)
	}
}

func buildModel(seed uint64) *nn.Sequential {
	r := nn.NewRNG(seed)
	return nn.NewSequential(
		nn.NewDense("fc1", 32, 64, r),
		nn.NewReLU("relu1"),
		nn.NewDense("fc2", 64, 64, r),
		nn.NewReLU("relu2"),
		nn.NewDense("fc3", 64, 8, r),
	)
}

func batchFor(step, worker int) (*nn.Tensor, []int) {
	r := nn.NewRNG(uint64(1000 + step*64 + worker))
	const batch, features, classes = 16, 32, 8
	x := nn.NewTensor(batch, features)
	labels := make([]int, batch)
	for b := 0; b < batch; b++ {
		var sum float32
		for f := 0; f < features; f++ {
			v := r.Normalish()
			x.Data[b*features+f] = v
			sum += v
		}
		l := int(sum * 1.5)
		if l < 0 {
			l = -l
		}
		labels[b] = l % classes
	}
	return x, labels
}

func parsePolicies(s string, layers int) ([]nn.Policy, error) {
	parts := strings.Split(s, ",")
	if len(parts) != layers {
		return nil, fmt.Errorf("want %d policies, got %d", layers, len(parts))
	}
	out := make([]nn.Policy, layers)
	for i, p := range parts {
		switch strings.TrimSpace(p) {
		case "keep":
			out[i] = nn.Keep
		case "swap":
			out[i] = nn.Swap
		case "recompute":
			out[i] = nn.Recompute
		default:
			return nil, fmt.Errorf("unknown policy %q", p)
		}
	}
	return out, nil
}

func run(steps int, capacity int64, policyFlag string, workers int) error {
	ref := buildModel(7)
	policies, err := parsePolicies(policyFlag, len(ref.Layers))
	if err != nil {
		return err
	}

	if workers > 0 {
		master := buildModel(7)
		replicas := make([]*nn.Sequential, workers)
		for w := range replicas {
			replicas[w] = buildModel(uint64(100 + w))
		}
		losses, err := nn.TrainDataParallel(master, replicas, steps, batchFor, nn.ParallelConfig{
			Workers: workers, ArenaBytes: capacity, Policies: policies,
			LR: 0.05, Momentum: 0.9,
		})
		if err != nil {
			return err
		}
		fmt.Printf("data-parallel KARMA pipeline: %d workers, %d steps\n", workers, steps)
		fmt.Printf("loss: %.4f -> %.4f\n", losses[0], losses[len(losses)-1])
		return nil
	}

	// Out-of-core run under the capacity.
	ooc := buildModel(7)
	arena := nn.NewArena(capacity)
	exec, err := nn.NewExec(ooc, arena, policies)
	if err != nil {
		return err
	}
	opt := nn.NewSGD(0.05, 0.9)
	var first, last float32
	for s := 0; s < steps; s++ {
		x, labels := batchFor(s, 0)
		loss, err := exec.Step(x, labels, opt)
		if err != nil {
			return fmt.Errorf("step %d: %w (capacity too small for these policies?)", s, err)
		}
		if s == 0 {
			first = loss
		}
		last = loss
	}
	fmt.Printf("out-of-core training: %d steps under %d-byte near memory\n", steps, capacity)
	fmt.Printf("loss: %.4f -> %.4f; swap traffic: %d bytes\n", first, last, arena.Moved())

	// In-core reference for the §IV-D equivalence check.
	refArena := nn.NewArena(1 << 30)
	refExec, err := nn.NewExec(ref, refArena, make([]nn.Policy, len(ref.Layers)))
	if err != nil {
		return err
	}
	refOpt := nn.NewSGD(0.05, 0.9)
	for s := 0; s < steps; s++ {
		x, labels := batchFor(s, 0)
		if _, err := refExec.Step(x, labels, refOpt); err != nil {
			return err
		}
	}
	identical := true
	op, rp := ooc.Params(), ref.Params()
	for i := range op {
		if !op[i].Equal(rp[i]) {
			identical = false
		}
	}
	fmt.Printf("bitwise identical to in-core training: %v\n", identical)
	if !identical {
		return fmt.Errorf("equivalence violated")
	}
	return nil
}
