// Command bench-compare diffs two benchmark snapshots (BENCH_<n>.json)
// and fails when any benchmark regressed past the threshold along a
// gated dimension: wall time (ns/op) and, by default, allocation count
// (allocs/op) and allocated bytes (B/op). It is the CI bench gate;
// scripts/bench-compare wraps it.
//
// Usage:
//
//	bench-compare -old BENCH_6.json -new BENCH_7.json [-threshold 0.10] [-dims time,allocs,bytes]
//
// Exit status: 0 when no benchmark regressed (improvements, added and
// removed benchmarks pass), 1 on regression, 2 on unusable input.
package main

import (
	"flag"
	"fmt"
	"os"

	"karma/internal/benchcmp"
)

func main() {
	oldPath := flag.String("old", "", "baseline snapshot (required)")
	newPath := flag.String("new", "", "candidate snapshot (required)")
	threshold := flag.Float64("threshold", 0.10, "fractional growth that fails the gate")
	dims := flag.String("dims", "time,allocs,bytes", "comma-separated gated dimensions (time, allocs, bytes)")
	flag.Parse()

	code, err := run(*oldPath, *newPath, *threshold, *dims)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-compare: %v\n", err)
	}
	os.Exit(code)
}

func run(oldPath, newPath string, threshold float64, dims string) (int, error) {
	if oldPath == "" || newPath == "" {
		return 2, fmt.Errorf("both -old and -new are required")
	}
	dimList, err := benchcmp.ParseDims(dims)
	if err != nil {
		return 2, err
	}
	old, err := benchcmp.Load(oldPath)
	if err != nil {
		return 2, err
	}
	cur, err := benchcmp.Load(newPath)
	if err != nil {
		return 2, err
	}
	report, err := benchcmp.Compare(old, cur, threshold, dimList...)
	if err != nil {
		return 2, err
	}
	fmt.Print(report)
	if len(report.Regressions()) > 0 {
		return 1, nil
	}
	return 0, nil
}
